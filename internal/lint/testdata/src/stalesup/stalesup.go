// Package sim is the stale-suppression fixture: an allow that suppresses a
// real finding is fine, an allow whose check ran but suppressed nothing is
// itself a finding, and an allow for a check that did not run stays silent
// (a -checks subset must not flag the other analyzers' exceptions).
package sim

import "time"

func clock() time.Time {
	//lint:allow determinism fixture: this allow is real and suppresses the finding below
	return time.Now()
}

func pure() int {
	//lint:allow determinism fixture: nothing here to suppress, so this allow is stale
	return 4
}

func other() int {
	//lint:allow chansend fixture: chansend does not run in this test, so this is not stale
	return 5
}
