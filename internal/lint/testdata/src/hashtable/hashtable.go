// Package hashtable is the lockcheck-analyzer fixture: leaked locks,
// returns on a held-lock path, and blocking calls under a lock must be
// reported; the defer idiom and annotated exceptions must not.
package hashtable

import (
	"net"
	"sync"
	"time"
)

type shardSet struct {
	mu    sync.Mutex
	count int64
}

func (s *shardSet) leak() {
	s.mu.Lock() // want `no matching defer`
	s.count++
}

func (s *shardSet) earlyReturn(v int64) {
	s.mu.Lock()
	if v < 0 {
		return // want `return while s.mu may still be held`
	}
	s.count += v
	s.mu.Unlock()
}

func (s *shardSet) readUnderLock(conn net.Conn, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := conn.Read(buf) // want `blocking call \(net.Conn\).Read`
	if err == nil {
		s.count++
	}
	return err
}

func (s *shardSet) disciplined(v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count += v
}

func (s *shardSet) stallForTest(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockcheck fixture: the stall under lock is the behaviour being tested
	time.Sleep(d)
}
