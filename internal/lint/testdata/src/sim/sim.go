// Package sim is the determinism-analyzer fixture. It mirrors the shapes
// the real simulator uses: lines marked `// want` are violations the
// analyzer must report, the //lint:allow line is an accepted suppression,
// and everything else is the blessed idiom the analyzer must stay quiet
// about.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

type stats struct {
	perNode map[int]int64
}

func wallClock() time.Time {
	return time.Now() // want `wall-clock call time.Now`
}

func capturedClock() func() time.Time {
	return time.Now // want `captured as a value`
}

func allowedClock() time.Time {
	//lint:allow determinism fixture: sanctioned diagnostic-only clock
	return time.Now()
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func emit(s *stats, send func(int)) {
	for id := range s.perNode {
		send(id) // want `function call`
	}
}

func total(s *stats) int64 {
	var sum int64
	for _, v := range s.perNode {
		sum += v // commutative integer accumulation: accepted
	}
	return sum
}

func anyNegative(s *stats) bool {
	for _, v := range s.perNode {
		if v < 0 {
			return true // constant-only return (any-quantifier): accepted
		}
	}
	return false
}

func sortedIDs(s *stats) []int {
	ids := make([]int, 0, len(s.perNode))
	for id := range s.perNode {
		ids = append(ids, id) // key-collecting append: accepted
	}
	sort.Ints(ids)
	return ids
}
