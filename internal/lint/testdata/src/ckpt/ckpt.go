// Package wire is the ckptexhaustive-analyzer fixture: every switch over
// the CkptKind type must cover all declared kinds, carry a default arm,
// and fail typed (ErrUnknownKind) in that default. The clean encoder and
// decoder double as the role anchors the program-level check looks for.
package wire

import (
	"errors"
	"fmt"
)

var ErrUnknownKind = errors.New("unknown checkpoint record kind")

type CkptKind uint8

const (
	CkptHeader CkptKind = iota + 1
	CkptDelivery
	CkptDeath
)

// AppendCheckpointRecord is the encode anchor: exhaustive, typed default.
func AppendCheckpointRecord(b []byte, k CkptKind) ([]byte, error) {
	switch k {
	case CkptHeader:
		return append(b, 1), nil
	case CkptDelivery:
		return append(b, 2), nil
	case CkptDeath:
		return append(b, 3), nil
	default:
		return nil, fmt.Errorf("encode: %w (kind %d)", ErrUnknownKind, k)
	}
}

type reader struct{}

// Next is the decode anchor.
func (r *reader) Next(k CkptKind) error {
	switch k {
	case CkptHeader, CkptDelivery, CkptDeath:
		return nil
	default:
		return fmt.Errorf("decode: %w (kind %d)", ErrUnknownKind, k)
	}
}

func replayMissingArm(k CkptKind) error {
	switch k { // want `missing an arm for CkptDeath`
	case CkptHeader:
		return nil
	case CkptDelivery:
		return nil
	default:
		return fmt.Errorf("replay: %w (kind %d)", ErrUnknownKind, k)
	}
}

func replayNoDefault(k CkptKind) error {
	switch k { // want `no default arm`
	case CkptHeader, CkptDelivery, CkptDeath:
		return nil
	}
	return nil
}

func replayUntypedDefault(k CkptKind) error {
	switch k {
	case CkptHeader, CkptDelivery, CkptDeath:
		return nil
	default: // want `does not reference ErrUnknownKind`
		return fmt.Errorf("replay: bad kind %d", k)
	}
}

// An annotated exception: a legacy dispatcher that predates a kind and is
// kept only to read old logs.
func legacyReplay(k CkptKind) error {
	//lint:allow ckptexhaustive fixture: legacy dispatcher kept for pre-CkptDeath log compatibility
	switch k {
	case CkptHeader, CkptDelivery:
		return nil
	default:
		return fmt.Errorf("replay: %w (kind %d)", ErrUnknownKind, k)
	}
}
