// Package tcpnet is the chansend-analyzer fixture: naked blocking sends
// must be reported, select-guarded sends and annotated exceptions must not.
package tcpnet

type frame struct{ seq uint64 }

func drainNaked(out chan frame, fs []frame) {
	for _, f := range fs {
		out <- f // want `blocking send on out outside select`
	}
}

func drainGuarded(out chan frame, stop chan struct{}, fs []frame) {
	for _, f := range fs {
		select {
		case out <- f:
		case <-stop:
			return
		}
	}
}

func handshake() chan frame {
	out := make(chan frame, 1)
	//lint:allow chansend fixture: freshly created buffered channel, first send cannot block
	out <- frame{seq: 1}
	return out
}
