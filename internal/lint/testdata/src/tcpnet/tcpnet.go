// Package tcpnet is the chansend-analyzer fixture: naked blocking sends
// must be reported, select-guarded sends and annotated exceptions must not.
package tcpnet

type frame struct{ seq uint64 }

func drainNaked(out chan frame, fs []frame) {
	for _, f := range fs {
		out <- f // want `blocking send on out outside select`
	}
}

func drainGuarded(out chan frame, stop chan struct{}, fs []frame) {
	for _, f := range fs {
		select {
		case out <- f:
		case <-stop:
			return
		}
	}
}

func handshake() chan frame {
	out := make(chan frame, 1)
	//lint:allow chansend fixture: freshly created buffered channel, first send cannot block
	out <- frame{seq: 1}
	return out
}

// peerLink mirrors the p2p data plane's per-link outbox: sends through a
// field selector are the same discipline as sends on a local channel.
type peerLink struct{ out chan frame }

func ackPeerNaked(lk *peerLink) {
	lk.out <- frame{} // want `blocking send on lk.out outside select`
}

func ackPeerGuarded(lk *peerLink) {
	select {
	case lk.out <- frame{}:
	default: // a full outbox is traffic that will carry the ack
	}
}
