// Package tcpnet is the walorder-analyzer fixture: every logged state
// transition (ack release, delivery apply, tombstone, epoch bump, phase
// barrier) must be preceded in its function by a logRecord call carrying
// the matching checkpoint kind; replay code is exempt, and a logRecord
// whose kind is not syntactically readable matches every kind.
package tcpnet

type CkptKind uint8

const (
	CkptHeader CkptKind = iota + 1
	CkptDelivery
	CkptEpoch
	CkptDeath
	CkptPhase
)

type CkptRecord struct {
	Kind   CkptKind
	Worker int32
}

const stateDead = 3

type session struct{ acked uint64 }

func (s *session) logged(seq uint64) {}
func (s *session) reset()            {}

type worker struct {
	state int
	sess  *session
}

type actor struct{}

func (a *actor) Receive(msg any) {}

type Coordinator struct {
	workers []*worker
	actors  map[int]*actor
	drains  int
}

func (c *Coordinator) logRecord(rec *CkptRecord) {}
func (c *Coordinator) headerRecord() *CkptRecord { return &CkptRecord{Kind: CkptHeader} }
func (c *Coordinator) bumpPeerEpoch(i int)       {}

// Log-before-act done right: record, then ack gate, then apply.
func (c *Coordinator) applyGood(i int, msg any) {
	c.logRecord(&CkptRecord{Kind: CkptDelivery})
	c.workers[i].sess.logged(1)
	c.actors[i].Receive(msg)
}

func (c *Coordinator) applyBad(i int, msg any) {
	c.actors[i].Receive(msg) // want `delivery applied \(Receive\) in applyBad before any logRecord\(Kind: CkptDelivery\)`
	c.logRecord(&CkptRecord{Kind: CkptDelivery})
}

func (c *Coordinator) ackBad(i int) {
	c.workers[i].sess.logged(7) // want `gated ack released \(logged\) in ackBad before any logRecord`
}

func (c *Coordinator) markBad(i int) {
	c.workers[i].state = stateDead // want `worker tombstoned \(state = stateDead\) in markBad before any logRecord\(Kind: CkptDeath\)`
	c.logRecord(&CkptRecord{Kind: CkptDeath, Worker: int32(i)})
}

func (c *Coordinator) markGood(i int) {
	c.logRecord(&CkptRecord{Kind: CkptDeath, Worker: int32(i)})
	c.workers[i].state = stateDead
}

// A record built elsewhere: the kind is not syntactically readable, so it
// counts for every act that follows.
func (c *Coordinator) wildcardGood(i int, rec *CkptRecord) {
	c.logRecord(rec)
	c.workers[i].sess.reset()
	c.drains++
}

func (c *Coordinator) phaseBad() {
	c.drains++ // want `phase barrier advanced \(drains\+\+\) in phaseBad before any logRecord\(Kind: CkptPhase\)`
	c.logRecord(&CkptRecord{Kind: CkptPhase})
}

// headerRecord() reads as CkptHeader — it must not satisfy an epoch act.
func (c *Coordinator) headerThenEpoch(i int) {
	c.logRecord(c.headerRecord())
	c.workers[i].sess.reset() // want `session reset in headerThenEpoch before any logRecord\(Kind: CkptEpoch\)`
}

type replayState struct{}

// Replay re-applies records already in the log: exempt.
func (c *Coordinator) replayDeath(st *replayState, i int) {
	c.workers[i].state = stateDead
}

// No Coordinator receiver or parameter: out of scope.
func freeStanding(w *worker) {
	w.state = stateDead
}

// An intentional exception must carry its reason.
func (c *Coordinator) reconnectOnly(i int) {
	//lint:allow walorder fixture: reconnect-only rung never has a checkpoint log by construction
	c.bumpPeerEpoch(i)
}
