// Package tcpnet is the gorolifetime-analyzer fixture: every go statement
// must spawn a body that provably exits at shutdown — joined by a
// WaitGroup, looping only until an error or a closable-channel signal, or
// containing no suspect loop at all. The unbounded retry pump is the PR 7
// redial-leak shape the analyzer exists to catch.
package tcpnet

import (
	"errors"
	"sync"
)

type conn struct{}

func (c *conn) read() (byte, error) { return 0, errors.New("eof") }

type peer struct {
	done   chan struct{}
	frames chan int
}

func (p *peer) shutdown() {
	close(p.done)
	close(p.frames)
}

// The redial-leak shape: retry forever, no exit a shutdown can reach.
func (p *peer) redialForever(dial func() error) {
	go func() { // want `not provably lifecycle-bounded`
		for {
			if dial() == nil {
				continue
			}
		}
	}()
}

// Spawning a body the package cannot see is itself a finding.
func spawnOpaque(f func()) {
	go f() // want `whose body this package cannot see`
}

// Bounded: the read-until-error connection loop.
func (p *peer) readLoop(c *conn) {
	go func() {
		for {
			if _, err := c.read(); err != nil {
				return
			}
		}
	}()
}

// Bounded: a done-channel select arm, and the package closes done.
func (p *peer) ticker() {
	go func() {
		for {
			select {
			case <-p.done:
				return
			case f := <-p.frames:
				_ = f
			}
		}
	}()
}

// Bounded: joined by a WaitGroup.
func pool(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
		}
	}()
}

// Bounded: ranging a channel the package closes drains to termination.
func (p *peer) drain() {
	go func() {
		for range p.frames {
		}
	}()
}

// Bounded: no loop at all — the body runs to its end.
func (p *peer) handshake(f func()) {
	go func() { f() }()
}

// A spawned declaration is resolved and checked like a literal.
func (p *peer) run() {
	for {
		select {
		case <-p.done:
			return
		}
	}
}

func (p *peer) start() {
	go p.run()
}

// An intentional exception must carry its reason.
func metricsForever(tick func()) {
	//lint:allow gorolifetime fixture: process-lifetime metrics pump, torn down with the process
	go func() {
		for {
			tick()
		}
	}()
}
