// Package wire is the wireexhaustive-analyzer fixture: codec switches with
// a missing arm, a missing default, or an untyped default must be reported;
// the exhaustive switch with an ErrUnknownKind default must not.
package wire

import (
	"errors"
	"fmt"
)

// ErrUnknownKind is the typed sentinel; its own definition is the one
// legitimate non-wrapping constructor.
var ErrUnknownKind = errors.New("unknown frame kind")

type frameKind uint8

const (
	frameMsg frameKind = iota
	frameAck
	framePing
)

func encodeMissingArm(k frameKind) ([]byte, error) {
	switch k { // want `missing an arm for framePing`
	case frameMsg:
		return []byte{0}, nil
	case frameAck:
		return []byte{1}, nil
	default:
		return nil, fmt.Errorf("encode unknown frame kind %d: %w", k, ErrUnknownKind)
	}
}

func decodeNoDefault(k frameKind) error {
	switch k { // want `no default arm`
	case frameMsg, frameAck, framePing:
		return nil
	}
	return nil
}

func decodeUntypedDefault(k frameKind) error {
	switch k {
	case frameMsg, frameAck, framePing:
		return nil
	default: // want `does not wrap ErrUnknownKind`
		return fmt.Errorf("bad frame kind %d", k)
	}
}

func decodeGood(k frameKind) error {
	switch k {
	case frameMsg, frameAck, framePing:
		return nil
	default:
		return fmt.Errorf("decode unknown frame kind %d: %w", k, ErrUnknownKind)
	}
}

func untypedUnknown(k frameKind) error {
	return fmt.Errorf("unknown frame kind %d", k) // want `does not wrap the typed sentinel`
}

func legacyUnknown() error {
	//lint:allow wireexhaustive fixture: legacy message kept for wire-log compatibility
	return errors.New("unknown codec id in legacy header")
}
