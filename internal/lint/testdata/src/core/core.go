// Package core is the reportsync-analyzer fixture: a Report struct whose
// fields exercise every liveness state — merged and printed (clean), merged
// but never printed, printed but never merged, orphaned, and a merged-only
// field excused by annotation.
package core

import "fmt"

// Report mirrors the real report type: every field must be populated by a
// merge site and consumed by a print site.
type Report struct {
	Matches   int64
	WireBytes int64 // want `merged but never consumed`
	Stale     int64 // want `never populated`
	Orphan    int64 // want `neither populated nor consumed`
	//lint:allow reportsync fixture: counter reserved for a follow-up printer
	Debug int64
}

func merge(r *Report, matches, wireBytes int64) {
	r.Matches += matches
	r.WireBytes += wireBytes
	r.Debug++
}

func print(r *Report) string {
	return fmt.Sprintf("matches %d stale %d", r.Matches, r.Stale)
}
