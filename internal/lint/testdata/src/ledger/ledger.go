// Package core is the ledger-analyzer fixture: every conservation counter
// in the curated table must pair its accruals with a reversal reachable
// from a purge/restore root. cloneReceived accrues and never reverses;
// heavyCopies reverses on the purge path (clean); heavyCopyCount reverses
// only in a helper nothing on a purge path calls.
package core

type joinActor struct {
	cloneReceived  int64 // want `accrued but never reversed`
	heavyCopies    int64
	heavyCopyCount map[uint64]int64 // want `none reachable from a purge/restore root`
}

func (j *joinActor) onClone(n int64) {
	j.cloneReceived += n
	j.heavyCopies += n
	j.heavyCopyCount[uint64(n)]++
}

func (j *joinActor) onPurgeRange(n int64) {
	j.heavyCopies -= n
}

// orphanDrop reverses heavyCopyCount, but no purge/restore root reaches it.
func (j *joinActor) orphanDrop(k uint64) {
	delete(j.heavyCopyCount, k)
}
