package hashfn

import (
	"testing"
	"testing/quick"
)

func TestPositionInSpace(t *testing.T) {
	for _, mode := range []Mode{Scaled, Multiplicative} {
		s := Space{Bits: 10, Mode: mode}
		f := func(key uint64) bool {
			p := s.PositionOf(key)
			return p >= 0 && p < s.Positions()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

func TestScaledIsOrderPreserving(t *testing.T) {
	s := Space{Bits: 12, Mode: Scaled}
	f := func(a, b uint64) bool {
		if a > b {
			a, b = b, a
		}
		return s.PositionOf(a) <= s.PositionOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaledExtremes(t *testing.T) {
	s := DefaultSpace()
	if got := s.PositionOf(0); got != 0 {
		t.Errorf("PositionOf(0) = %d", got)
	}
	if got := s.PositionOf(^uint64(0)); got != s.Positions()-1 {
		t.Errorf("PositionOf(max) = %d, want %d", got, s.Positions()-1)
	}
}

func TestMultiplicativeSpreadsClusteredKeys(t *testing.T) {
	// Keys clustered in a tiny window should still hit many distinct
	// positions under the mixing hash, and very few under the scaled hash.
	s := Space{Bits: 16, Mode: Multiplicative}
	sc := Space{Bits: 16, Mode: Scaled}
	mixed := map[int]bool{}
	scaled := map[int]bool{}
	base := uint64(1) << 40
	for i := uint64(0); i < 1000; i++ {
		mixed[s.PositionOf(base+i)] = true
		scaled[sc.PositionOf(base+i)] = true
	}
	if len(mixed) < 900 {
		t.Errorf("multiplicative hash hit only %d distinct positions", len(mixed))
	}
	if len(scaled) > 2 {
		t.Errorf("scaled hash spread clustered keys over %d positions", len(scaled))
	}
}

func TestSpaceValidate(t *testing.T) {
	if err := DefaultSpace().Validate(); err != nil {
		t.Errorf("default space invalid: %v", err)
	}
	for _, bad := range []Space{{Bits: 0}, {Bits: 31}, {Bits: 8, Mode: Mode(7)}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("space %+v should be invalid", bad)
		}
	}
}

func TestRangeHalves(t *testing.T) {
	lo, hi := Range{10, 20}.Halves()
	if lo != (Range{10, 15}) || hi != (Range{15, 20}) {
		t.Errorf("halves = %v, %v", lo, hi)
	}
	// Odd width: lower half gets the smaller share.
	lo, hi = Range{0, 5}.Halves()
	if lo.Width()+hi.Width() != 5 || lo.Hi != hi.Lo {
		t.Errorf("odd halves = %v, %v", lo, hi)
	}
}

func TestModeAndRangeStrings(t *testing.T) {
	if Scaled.String() != "scaled" || Multiplicative.String() != "multiplicative" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
	if (Range{1, 3}).String() != "[1,3)" {
		t.Errorf("range string: %s", Range{1, 3})
	}
}
