package hashfn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustTable(t *testing.T, space Space, owners []int32) *Table {
	t.Helper()
	tbl, err := NewTable(space, owners)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableTilesSpace(t *testing.T) {
	space := Space{Bits: 10, Mode: Scaled}
	for _, n := range []int{1, 2, 3, 4, 7, 16, 24} {
		owners := make([]int32, n)
		for i := range owners {
			owners[i] = int32(i)
		}
		tbl := mustTable(t, space, owners)
		if err := tbl.Validate(space); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if len(tbl.Entries) != n {
			t.Errorf("n=%d: %d entries", n, len(tbl.Entries))
		}
	}
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable(Space{Bits: 10}, nil); err == nil {
		t.Error("no owners should fail")
	}
	if _, err := NewTable(Space{Bits: 1}, []int32{0, 1, 2}); err == nil {
		t.Error("more owners than positions should fail")
	}
	if _, err := NewTable(Space{Bits: 0}, []int32{0}); err == nil {
		t.Error("invalid space should fail")
	}
}

func TestOwnerLookup(t *testing.T) {
	space := Space{Bits: 8, Mode: Scaled}
	tbl := mustTable(t, space, []int32{10, 11, 12, 13})
	for p := 0; p < space.Positions(); p++ {
		want := int32(10 + p/(space.Positions()/4))
		if got := tbl.BuildOwnerOf(p); got != want {
			t.Fatalf("owner of %d = %d, want %d", p, got, want)
		}
	}
}

func TestSplitEntryKeepsInvariants(t *testing.T) {
	space := Space{Bits: 8, Mode: Scaled}
	tbl := mustTable(t, space, []int32{0, 1})
	lower, upper, err := tbl.SplitEntry(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lower.Lo != 128 || upper.Hi != 256 || lower.Hi != upper.Lo {
		t.Errorf("split ranges %v %v", lower, upper)
	}
	if err := tbl.Validate(space); err != nil {
		t.Error(err)
	}
	if got := tbl.BuildOwnerOf(200); got != 2 {
		t.Errorf("upper half owner = %d, want 2", got)
	}
	if got := tbl.BuildOwnerOf(130); got != 1 {
		t.Errorf("lower half owner = %d, want 1", got)
	}
	if tbl.Version != 2 {
		t.Errorf("version = %d, want 2", tbl.Version)
	}
}

func TestSplitEntryTooNarrow(t *testing.T) {
	space := Space{Bits: 1, Mode: Scaled}
	tbl := mustTable(t, space, []int32{0, 1})
	if _, _, err := tbl.SplitEntry(0, 2); err == nil {
		t.Error("splitting a width-1 entry should fail")
	}
}

func TestAddReplicaChangesBuildOwnerOnly(t *testing.T) {
	space := Space{Bits: 8, Mode: Scaled}
	tbl := mustTable(t, space, []int32{0, 1, 2})
	tbl.AddReplica(1, 7)
	e := tbl.Entries[1]
	if e.BuildOwner() != 7 {
		t.Errorf("build owner = %d, want 7", e.BuildOwner())
	}
	if len(tbl.ProbeOwnersOf(e.Range.Lo)) != 2 {
		t.Errorf("probe owners = %v, want 2 nodes", tbl.ProbeOwnersOf(e.Range.Lo))
	}
	if len(tbl.Entries) != 3 {
		t.Errorf("replica changed entry count to %d", len(tbl.Entries))
	}
}

func TestReplaceEntries(t *testing.T) {
	space := Space{Bits: 8, Mode: Scaled}
	tbl := mustTable(t, space, []int32{0, 1})
	tbl.AddReplica(1, 2)
	repl := []Entry{
		{Range: Range{128, 170}, Owners: []int32{1}},
		{Range: Range{170, 256}, Owners: []int32{2}},
	}
	if err := tbl.ReplaceEntries(1, repl); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(space); err != nil {
		t.Error(err)
	}
	if got := tbl.BuildOwnerOf(180); got != 2 {
		t.Errorf("owner of 180 = %d", got)
	}
	// Bad tilings must be rejected.
	bad := [][]Entry{
		nil,
		{{Range: Range{128, 200}, Owners: []int32{1}}},
		{{Range: Range{0, 256}, Owners: []int32{1}}},
		{{Range: Range{128, 170}, Owners: []int32{1}}, {Range: Range{171, 256}, Owners: []int32{2}}},
	}
	for i, r := range bad {
		t2 := mustTable(t, space, []int32{0, 1})
		if err := t2.ReplaceEntries(1, r); err == nil {
			t.Errorf("bad replacement %d accepted", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	space := Space{Bits: 8, Mode: Scaled}
	tbl := mustTable(t, space, []int32{0, 1})
	c := tbl.Clone()
	tbl.AddReplica(0, 9)
	if c.Entries[0].BuildOwner() == 9 {
		t.Error("clone shares owner slice with original")
	}
	if c.Version == tbl.Version {
		t.Error("clone version tracked original")
	}
}

func TestOwnersDeduplicated(t *testing.T) {
	space := Space{Bits: 8, Mode: Scaled}
	tbl := mustTable(t, space, []int32{3, 4})
	tbl.AddReplica(0, 4)
	got := tbl.Owners()
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("owners = %v", got)
	}
}

// TestRandomMutationSequenceKeepsInvariants drives an arbitrary sequence of
// splits and replications and checks that the routing table invariants and
// lookup consistency always hold.
func TestRandomMutationSequenceKeepsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		space := Space{Bits: 10, Mode: Scaled}
		tbl, err := NewTable(space, []int32{0, 1, 2, 3})
		if err != nil {
			return false
		}
		next := int32(4)
		for op := 0; op < 40; op++ {
			idx := rng.Intn(len(tbl.Entries))
			if rng.Intn(2) == 0 {
				if tbl.Entries[idx].Range.Width() >= 2 {
					if _, _, err := tbl.SplitEntry(idx, next); err != nil {
						return false
					}
					next++
				}
			} else {
				tbl.AddReplica(idx, next)
				next++
			}
			if tbl.Validate(space) != nil {
				return false
			}
			// Every position must resolve through EntryIndexOf to an
			// entry containing it.
			for trial := 0; trial < 8; trial++ {
				p := rng.Intn(space.Positions())
				e := tbl.Entries[tbl.EntryIndexOf(p)]
				if !e.Range.Contains(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEntryIndexOwnedBy(t *testing.T) {
	space := Space{Bits: 8, Mode: Scaled}
	tbl := mustTable(t, space, []int32{5, 6})
	if got := tbl.EntryIndexOwnedBy(6); got != 1 {
		t.Errorf("index owned by 6 = %d", got)
	}
	if got := tbl.EntryIndexOwnedBy(99); got != -1 {
		t.Errorf("index owned by 99 = %d, want -1", got)
	}
}
