package hashfn

// Splitter tracks the linear-hashing split discipline used by the
// split-based algorithm (§4.2.1, after Amin et al. and Litwin).
//
// A split pointer walks the bucket sequence in position order. When any
// bucket overflows, the bucket *at the split pointer* — not necessarily the
// overflowed one — is split, its upper half migrating to a new node. After
// a full round every original bucket has been halved once and the pointer
// wraps, starting the next round (the paper's hash-function pair
// (h_i, h_{i+1}) advances to (h_{i+1}, h_{i+2})).
//
// The scheduler additionally keeps a *barrier*: only one split may be in
// flight at a time, so the pointer is not advanced past a bucket until that
// bucket's split has completed (the paper's "barrier split pointer",
// guaranteeing at most two active hash functions).
type Splitter struct {
	// Round counts completed pointer sweeps; it corresponds to the level i
	// of the active hash-function pair.
	Round int
	// ptr indexes the entry (in table order) to split next.
	ptr int
	// roundEnd is the number of entries that existed when the current
	// round began; entries created during the round are skipped until the
	// next round, exactly as linear hashing defers new buckets.
	roundEnd int
	// inFlight marks a split that has been issued but not yet completed.
	inFlight bool
}

// NewSplitter starts the discipline over a table with initialEntries
// buckets.
func NewSplitter(initialEntries int) *Splitter {
	return &Splitter{roundEnd: initialEntries}
}

// CanIssue reports whether a new split may be issued now (no split is in
// flight).
func (s *Splitter) CanIssue() bool { return !s.inFlight }

// Next selects the entry index to split in table t, honouring the pointer
// order and skipping entries too narrow to split. It returns -1 if no entry
// can be split (every range has width 1). Next does not mutate the table;
// the caller performs the split and then calls Issued/Completed.
func (s *Splitter) Next(t *Table) int {
	if s.inFlight {
		return -1
	}
	// At most two sweeps: the remainder of this round plus one full pass,
	// in case every splittable entry lies behind the pointer.
	for scanned := 0; scanned < 2*len(t.Entries)+2; scanned++ {
		if s.ptr >= s.roundEnd || s.ptr >= len(t.Entries) {
			// Round complete: all entries (including the ones created
			// this round) participate in the next round.
			s.Round++
			s.ptr = 0
			s.roundEnd = len(t.Entries)
		}
		if t.Entries[s.ptr].Range.Width() >= 2 {
			return s.ptr
		}
		s.ptr++
	}
	return -1
}

// Issued records that the entry returned by Next is being split. The table
// mutation inserts the new upper-half entry immediately after the split
// entry; the pointer skips both halves for the remainder of the round, and
// the round boundary shifts by one to account for the insertion.
func (s *Splitter) Issued() {
	s.inFlight = true
	s.ptr += 2
	s.roundEnd++
}

// Completed releases the barrier after the in-flight split has finished
// (the scheduler received the splitting node's done message).
func (s *Splitter) Completed() { s.inFlight = false }
