// Package hashfn implements the hash-address machinery of the join system:
// the hash-table position space, the functions mapping join attributes to
// positions, and the routing tables that map contiguous position ranges to
// join nodes.
//
// The paper treats the hash table as an array of positions whose *range* is
// partitioned into buckets, one bucket per join node (Figure 1); splitting
// and reshuffling both subdivide contiguous sub-ranges. We therefore expose
// two position functions:
//
//   - Scaled: order-preserving (top bits of the join attribute). A skewed
//     attribute distribution produces clustered positions, which is the
//     regime the paper's skew experiments exercise.
//   - Multiplicative: a Fibonacci-style mixing hash that uniformises any
//     key distribution. Useful when the caller wants classic hash-join
//     behaviour regardless of the value distribution.
package hashfn

import "fmt"

// Mode selects how join-attribute values map to hash-table positions.
type Mode uint8

const (
	// Scaled maps a key to a position by taking its top bits, preserving
	// the ordering (and therefore any skew) of the key distribution.
	Scaled Mode = iota
	// Multiplicative applies a 64-bit Fibonacci multiplicative hash before
	// taking the top bits, spreading any key distribution uniformly.
	Multiplicative
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Scaled:
		return "scaled"
	case Multiplicative:
		return "multiplicative"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// fibMul is 2^64 / phi, the classic multiplicative-hashing constant.
const fibMul = 0x9E3779B97F4A7C15

// Space is the hash-table position space: positions are integers in
// [0, 1<<Bits).
type Space struct {
	// Bits is the log2 of the number of hash-table positions.
	Bits uint
	// Mode selects the key-to-position function.
	Mode Mode
}

// DefaultBits yields 65 536 positions, enough to subdivide across hundreds
// of nodes while keeping per-range histograms (used by reshuffling) small.
const DefaultBits = 16

// DefaultSpace returns the space used throughout the experiments.
func DefaultSpace() Space { return Space{Bits: DefaultBits, Mode: Scaled} }

// Positions returns the number of positions in the space.
func (s Space) Positions() int { return 1 << s.Bits }

// PositionOf maps a join-attribute value to a hash-table position.
func (s Space) PositionOf(key uint64) int {
	if s.Mode == Multiplicative {
		key *= fibMul
	}
	return int(key >> (64 - s.Bits))
}

// Validate reports whether the space is usable.
func (s Space) Validate() error {
	if s.Bits == 0 || s.Bits > 30 {
		return fmt.Errorf("hashfn: space bits %d out of range [1,30]", s.Bits)
	}
	if s.Mode != Scaled && s.Mode != Multiplicative {
		return fmt.Errorf("hashfn: unknown mode %d", s.Mode)
	}
	return nil
}

// Range is a half-open interval [Lo, Hi) of hash-table positions.
type Range struct {
	Lo, Hi int
}

// Contains reports whether position p falls in the range.
func (r Range) Contains(p int) bool { return p >= r.Lo && p < r.Hi }

// Width returns the number of positions covered.
func (r Range) Width() int { return r.Hi - r.Lo }

// Halves cuts the range at its midpoint, returning the lower and upper
// halves. The caller must ensure Width() >= 2.
func (r Range) Halves() (lower, upper Range) {
	mid := r.Lo + r.Width()/2
	return Range{r.Lo, mid}, Range{mid, r.Hi}
}

// String implements fmt.Stringer.
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }
