package hashfn

import "testing"

// runSplit performs one full Next/Issued/Split/Completed cycle and returns
// the index split, or -1.
func runSplit(t *testing.T, tbl *Table, sp *Splitter, newOwner int32) int {
	t.Helper()
	idx := sp.Next(tbl)
	if idx < 0 {
		return -1
	}
	sp.Issued()
	if _, _, err := tbl.SplitEntry(idx, newOwner); err != nil {
		t.Fatalf("split entry %d: %v", idx, err)
	}
	sp.Completed()
	return idx
}

func TestSplitterWalksInOrder(t *testing.T) {
	space := Space{Bits: 8, Mode: Scaled}
	tbl := mustTable(t, space, []int32{0, 1, 2, 3})
	sp := NewSplitter(len(tbl.Entries))
	// Round 0: the pointer must visit the original four buckets in order.
	// After splitting entry k the new sibling is inserted at k+1, so the
	// pointer indices observed are 0, 2, 4, 6.
	want := []int{0, 2, 4, 6}
	next := int32(4)
	for i, w := range want {
		got := runSplit(t, tbl, sp, next)
		next++
		if got != w {
			t.Fatalf("split %d hit entry %d, want %d", i, got, w)
		}
		if sp.Round != 0 {
			t.Fatalf("round advanced early at split %d", i)
		}
	}
	// Next split starts round 1 from the beginning.
	got := runSplit(t, tbl, sp, next)
	if got != 0 || sp.Round != 1 {
		t.Fatalf("round 1 first split at %d (round %d)", got, sp.Round)
	}
}

func TestSplitterBarrier(t *testing.T) {
	space := Space{Bits: 8, Mode: Scaled}
	tbl := mustTable(t, space, []int32{0, 1})
	sp := NewSplitter(len(tbl.Entries))
	idx := sp.Next(tbl)
	if idx != 0 {
		t.Fatalf("first split at %d", idx)
	}
	sp.Issued()
	if sp.CanIssue() {
		t.Error("barrier should block a second split")
	}
	if got := sp.Next(tbl); got != -1 {
		t.Errorf("Next during in-flight split = %d, want -1", got)
	}
	sp.Completed()
	if !sp.CanIssue() {
		t.Error("barrier should release after completion")
	}
}

func TestSplitterSkipsUnsplittable(t *testing.T) {
	space := Space{Bits: 2, Mode: Scaled} // 4 positions
	tbl := mustTable(t, space, []int32{0, 1, 2, 3})
	sp := NewSplitter(len(tbl.Entries))
	// Every entry has width 1; nothing can split.
	if got := sp.Next(tbl); got != -1 {
		t.Errorf("Next on unsplittable table = %d, want -1", got)
	}
}

func TestSplitterExhaustsToPositionGranularity(t *testing.T) {
	space := Space{Bits: 4, Mode: Scaled} // 16 positions
	tbl := mustTable(t, space, []int32{0})
	sp := NewSplitter(1)
	next := int32(1)
	splits := 0
	for {
		idx := sp.Next(tbl)
		if idx < 0 {
			break
		}
		sp.Issued()
		if _, _, err := tbl.SplitEntry(idx, next); err != nil {
			t.Fatal(err)
		}
		sp.Completed()
		next++
		splits++
		if splits > 64 {
			t.Fatal("splitter did not terminate")
		}
	}
	if splits != 15 {
		t.Errorf("splits = %d, want 15 (down to single positions)", splits)
	}
	if err := tbl.Validate(space); err != nil {
		t.Error(err)
	}
	for _, e := range tbl.Entries {
		if e.Range.Width() != 1 {
			t.Errorf("entry %v not fully split", e.Range)
		}
	}
}
