package hashfn

import (
	"fmt"
	"sort"
)

// Entry assigns one contiguous position range to one or more join nodes.
//
// With a single owner the entry behaves like an ordinary bucket. With
// multiple owners the range has been *replicated* (replication-based and
// hybrid algorithms): build tuples stream to the newest owner (the tail of
// Owners), while probe tuples must be broadcast to every owner.
type Entry struct {
	Range  Range
	Owners []int32
}

// BuildOwner returns the node currently receiving build tuples for the
// range: the most recently added owner.
func (e Entry) BuildOwner() int32 { return e.Owners[len(e.Owners)-1] }

// Barrier invalidates build tuples that were routed into a range under a
// routing table older than MinVersion. It is appended when a range is
// rebuilt after a node failure: the authoritative copy of every tuple in
// the range is re-streamed from the data sources under the new table, so
// any copy still in flight under an older version must be discarded to
// keep the stored-exactly-once invariant.
type Barrier struct {
	Range      Range
	MinVersion uint64
}

// Table is the routing table shared (by value, via broadcast) between the
// scheduler, the data sources, and the join processes. Entries are kept
// sorted by Range.Lo and always tile the full position space exactly.
//
// Table is a value type from the perspective of the protocol: the scheduler
// mutates its master copy and broadcasts clones; receivers replace their
// copy when the version increases.
type Table struct {
	// Version increases with every mutation so that stale broadcast copies
	// can be recognised and discarded.
	Version uint64
	Entries []Entry
	// Dead lists nodes declared failed. Sources drop queued traffic for
	// them; the scheduler never recruits them.
	Dead []int32
	// Barriers records every range rebuilt after a failure, with the table
	// version from which re-streamed tuples are authoritative.
	Barriers []Barrier
}

// NewTable partitions the space evenly across the given owners, one entry
// per owner, mirroring the initial bucket assignment of all four
// algorithms.
func NewTable(space Space, owners []int32) (*Table, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	n := len(owners)
	if n == 0 {
		return nil, fmt.Errorf("hashfn: table needs at least one owner")
	}
	h := space.Positions()
	if n > h {
		return nil, fmt.Errorf("hashfn: %d owners exceed %d positions", n, h)
	}
	t := &Table{Version: 1, Entries: make([]Entry, 0, n)}
	for i := 0; i < n; i++ {
		lo := i * h / n
		hi := (i + 1) * h / n
		t.Entries = append(t.Entries, Entry{Range: Range{lo, hi}, Owners: []int32{owners[i]}})
	}
	return t, nil
}

// Clone returns a deep copy, used when broadcasting the table so receivers
// never alias the scheduler's master copy.
func (t *Table) Clone() *Table {
	c := &Table{Version: t.Version, Entries: make([]Entry, len(t.Entries))}
	for i, e := range t.Entries {
		owners := make([]int32, len(e.Owners))
		copy(owners, e.Owners)
		c.Entries[i] = Entry{Range: e.Range, Owners: owners}
	}
	if len(t.Dead) > 0 {
		c.Dead = append([]int32(nil), t.Dead...)
	}
	if len(t.Barriers) > 0 {
		c.Barriers = append([]Barrier(nil), t.Barriers...)
	}
	return c
}

// MarkDead records a failed node and bumps the version so receivers learn
// about the death with the next broadcast.
func (t *Table) MarkDead(node int32) {
	for _, d := range t.Dead {
		if d == node {
			return
		}
	}
	t.Dead = append(t.Dead, node)
	t.Version++
}

// IsDead reports whether node has been declared failed.
func (t *Table) IsDead(node int32) bool {
	for _, d := range t.Dead {
		if d == node {
			return true
		}
	}
	return false
}

// AddBarrier appends a re-stream barrier (see Barrier).
func (t *Table) AddBarrier(b Barrier) { t.Barriers = append(t.Barriers, b) }

// StaleInBarrier reports whether a build tuple at position p, routed under
// table version v, has been invalidated by a re-stream barrier.
func (t *Table) StaleInBarrier(p int, v uint64) bool {
	for _, b := range t.Barriers {
		if v < b.MinVersion && b.Range.Contains(p) {
			return true
		}
	}
	return false
}

// RemoveOwner removes node from every entry that has other owners left (a
// sole owner is kept so the table keeps tiling; traffic to it is dropped by
// the engine). It reports whether the table changed.
func (t *Table) RemoveOwner(node int32) bool {
	changed := false
	for i := range t.Entries {
		e := &t.Entries[i]
		if len(e.Owners) < 2 {
			continue
		}
		kept := e.Owners[:0]
		for _, o := range e.Owners {
			if o != node {
				kept = append(kept, o)
			}
		}
		if len(kept) != len(e.Owners) && len(kept) > 0 {
			e.Owners = kept
			changed = true
		}
	}
	if changed {
		t.Version++
	}
	return changed
}

// EntryIndexOf returns the index of the entry containing position p.
func (t *Table) EntryIndexOf(p int) int {
	// Find the first entry with Range.Hi > p; entries tile the space, so
	// that entry contains p.
	i := sort.Search(len(t.Entries), func(i int) bool { return t.Entries[i].Range.Hi > p })
	if i == len(t.Entries) {
		panic(fmt.Sprintf("hashfn: position %d beyond table covering %v", p, t.Entries[len(t.Entries)-1].Range))
	}
	return i
}

// BuildOwnerOf returns the node that should receive a build tuple hashed to
// position p.
func (t *Table) BuildOwnerOf(p int) int32 {
	return t.Entries[t.EntryIndexOf(p)].BuildOwner()
}

// ProbeOwnersOf returns every node that must receive a probe tuple hashed
// to position p. For unreplicated ranges this is a single node.
func (t *Table) ProbeOwnersOf(p int) []int32 {
	return t.Entries[t.EntryIndexOf(p)].Owners
}

// EntryIndexOwnedBy returns the index of the first entry whose build owner
// is node, or -1.
func (t *Table) EntryIndexOwnedBy(node int32) int {
	for i, e := range t.Entries {
		if e.BuildOwner() == node {
			return i
		}
	}
	return -1
}

// SplitEntry halves the range of entry idx: the existing owners keep the
// lower half and newOwner receives the upper half as a fresh single-owner
// entry. It returns the two resulting ranges and an error if the entry is
// too narrow to split.
func (t *Table) SplitEntry(idx int, newOwner int32) (lower, upper Range, err error) {
	e := t.Entries[idx]
	if e.Range.Width() < 2 {
		return Range{}, Range{}, fmt.Errorf("hashfn: entry %d range %v too narrow to split", idx, e.Range)
	}
	lower, upper = e.Range.Halves()
	t.Entries[idx].Range = lower
	newEntry := Entry{Range: upper, Owners: []int32{newOwner}}
	t.Entries = append(t.Entries, Entry{})
	copy(t.Entries[idx+2:], t.Entries[idx+1:])
	t.Entries[idx+1] = newEntry
	t.Version++
	return lower, upper, nil
}

// AddReplica appends newOwner to entry idx's owner list; newOwner becomes
// the build owner of the range.
func (t *Table) AddReplica(idx int, newOwner int32) {
	t.Entries[idx].Owners = append(t.Entries[idx].Owners, newOwner)
	t.Version++
}

// ReplaceEntries substitutes the entry at idx with the given replacement
// entries, which must tile exactly the same range in ascending order. It is
// used by the hybrid algorithm's reshuffling step, which turns one
// replicated entry into several disjoint single-owner entries.
func (t *Table) ReplaceEntries(idx int, repl []Entry) error {
	orig := t.Entries[idx].Range
	if len(repl) == 0 {
		return fmt.Errorf("hashfn: empty replacement for entry %d", idx)
	}
	lo := orig.Lo
	for _, e := range repl {
		if e.Range.Lo != lo {
			return fmt.Errorf("hashfn: replacement ranges do not tile %v (gap at %d)", orig, lo)
		}
		lo = e.Range.Hi
	}
	if lo != orig.Hi {
		return fmt.Errorf("hashfn: replacement ranges stop at %d, want %d", lo, orig.Hi)
	}
	out := make([]Entry, 0, len(t.Entries)+len(repl)-1)
	out = append(out, t.Entries[:idx]...)
	out = append(out, repl...)
	out = append(out, t.Entries[idx+1:]...)
	t.Entries = out
	t.Version++
	return nil
}

// Owners returns the deduplicated set of all nodes appearing in the table,
// in first-appearance order.
func (t *Table) Owners() []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for _, e := range t.Entries {
		for _, o := range e.Owners {
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	return out
}

// Validate checks the table invariants: entries sorted, tiling the space
// exactly, each with at least one owner.
func (t *Table) Validate(space Space) error {
	if len(t.Entries) == 0 {
		return fmt.Errorf("hashfn: empty table")
	}
	lo := 0
	for i, e := range t.Entries {
		if e.Range.Lo != lo {
			return fmt.Errorf("hashfn: entry %d starts at %d, want %d", i, e.Range.Lo, lo)
		}
		if e.Range.Width() <= 0 {
			return fmt.Errorf("hashfn: entry %d has non-positive range %v", i, e.Range)
		}
		if len(e.Owners) == 0 {
			return fmt.Errorf("hashfn: entry %d has no owners", i)
		}
		lo = e.Range.Hi
	}
	if lo != space.Positions() {
		return fmt.Errorf("hashfn: table covers [0,%d), want [0,%d)", lo, space.Positions())
	}
	return nil
}
