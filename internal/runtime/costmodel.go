package runtime

// CostModel parameterises the emulated cluster: per-port network
// serialisation, per-tuple CPU costs, and local-disk characteristics. The
// simulator consumes the network and disk parts; the actors charge the CPU
// parts through Env.ChargeCPU.
//
// The default, OSUMed, is calibrated to the paper's testbed — 24 Pentium
// III 933 MHz nodes with 512 MB memory and local IDE disks, connected by
// switched 100 Mb/s Ethernet. Absolute figures are approximations of
// 2003-era hardware; the experiments' comparative shapes do not depend on
// their precise values.
type CostModel struct {
	// NetBandwidthBps is the per-port, per-direction network bandwidth in
	// bytes per second (100 Mb/s full duplex = 12.5e6).
	NetBandwidthBps float64
	// NetLatencyNs is the one-way switch latency.
	NetLatencyNs int64
	// MsgOverheadBytes covers per-message framing (headers etc.).
	MsgOverheadBytes int

	// GenNs is the CPU cost for a data source to generate (or read) one
	// tuple and stage it into a chunk buffer.
	GenNs int64
	// BuildNs is the CPU cost to hash and insert one tuple during the
	// table building phase.
	BuildNs int64
	// ProbeNs is the CPU cost to hash and look up one probe tuple.
	ProbeNs int64
	// MatchNs is the additional CPU cost per produced join match.
	MatchNs int64
	// MoveNs is the CPU cost to extract and stage one tuple when a bucket
	// is split or a replicated range is reshuffled.
	MoveNs int64
	// ChunkOverheadNs is the fixed CPU cost of handling one chunk message.
	ChunkOverheadNs int64
	// MorselNs is the fixed CPU cost of dispatching one shard morsel to
	// the intra-node worker pool; charged per active shard per chunk when
	// a node runs a sharded core (Config.Cores > 1).
	MorselNs int64

	// DiskWriteBps and DiskReadBps are sequential local-disk bandwidths in
	// bytes per second; DiskSeekNs is charged once per spill-partition
	// open. Used only by the out-of-core baseline.
	DiskWriteBps float64
	DiskReadBps  float64
	DiskSeekNs   int64

	// SerialParallelCharge makes a sharded node (Config.Cores > 1) charge
	// its parallel batches exactly as a serial node would — the sum of
	// the per-tuple costs instead of the critical path across shards plus
	// morsel overhead. The real goroutine pool still executes the work in
	// parallel; only the simulated clock is pinned to the serial
	// schedule, making a cores=P simulation message-for-message identical
	// to cores=1. The differential oracle tests rely on this; experiments
	// leave it unset so the simulator models intra-node speedup.
	SerialParallelCharge bool

	// BlockingMigration models split migrations as blocking sends: the
	// splitting node's CPU is occupied for the transfer's full wire time
	// before it releases the scheduler's barrier split pointer. The
	// default (false) lets migrations overlap with ongoing streaming,
	// which matches the paper's Figures 3-5 build times; the blocking
	// variant reproduces the regime of Figures 8-9, where split costs
	// grow with the build relation and the replication-based algorithm
	// wins. See EXPERIMENTS.md for the ablation.
	BlockingMigration bool
}

// OSUMed returns the cost model calibrated to the paper's cluster.
func OSUMed() CostModel {
	return CostModel{
		NetBandwidthBps:  12.5e6, // 100 Mb/s
		NetLatencyNs:     100_000,
		MsgOverheadBytes: 60,

		GenNs:           300,
		BuildNs:         900,
		ProbeNs:         700,
		MatchNs:         250,
		MoveNs:          250,
		ChunkOverheadNs: 50_000,
		MorselNs:        2_000,

		DiskWriteBps: 25e6,
		DiskReadBps:  35e6,
		DiskSeekNs:   8_000_000,
	}
}

// NetTransferNs returns the serialisation time of a payload of the given
// size through one network port.
func (c CostModel) NetTransferNs(bytes int) int64 {
	return int64(float64(bytes) / c.NetBandwidthBps * 1e9)
}

// DiskNs returns the pure-bandwidth time to move bytes to or from the
// local disk. Seek costs are charged separately per partition open by the
// out-of-core machinery (spill writes are buffered and sequential).
func (c CostModel) DiskNs(bytes int64, read bool) int64 {
	bw := c.DiskWriteBps
	if read {
		bw = c.DiskReadBps
	}
	return int64(float64(bytes) / bw * 1e9)
}
