package runtime

import "testing"

func TestOSUMedNetwork(t *testing.T) {
	cm := OSUMed()
	// 100 Mb/s: 1.25 MB takes 0.1 s.
	if got := cm.NetTransferNs(1_250_000); got != 100_000_000 {
		t.Errorf("NetTransferNs(1.25MB) = %d, want 1e8", got)
	}
}

func TestDiskNs(t *testing.T) {
	cm := CostModel{DiskWriteBps: 25e6, DiskReadBps: 50e6}
	if got := cm.DiskNs(25e6, false); got != 1_000_000_000 {
		t.Errorf("write 25MB = %d ns, want 1e9", got)
	}
	if got := cm.DiskNs(25e6, true); got != 500_000_000 {
		t.Errorf("read 25MB = %d ns, want 5e8", got)
	}
}

func TestOSUMedSane(t *testing.T) {
	cm := OSUMed()
	if cm.BuildNs <= 0 || cm.ProbeNs <= 0 || cm.GenNs <= 0 || cm.MoveNs <= 0 {
		t.Error("CPU costs must be positive")
	}
	if cm.NetBandwidthBps != 12.5e6 {
		t.Errorf("default bandwidth %v, want 100 Mb/s", cm.NetBandwidthBps)
	}
	if cm.DiskWriteBps <= 0 || cm.DiskReadBps <= 0 {
		t.Error("disk bandwidths must be positive")
	}
}
