// Package runtime defines the execution abstraction the join algorithms are
// written against. The scheduler, data sources, and join processes are
// Actors exchanging Messages through an Env; the same actor code runs
// unchanged on three engines:
//
//   - internal/sim: a deterministic discrete-event simulation with a
//     calibrated cluster cost model (virtual time) — the engine used for
//     reproducing the paper's measurements;
//   - internal/rt: a goroutine-per-actor engine (wall-clock time) — used
//     for correctness cross-checks and live demos;
//   - internal/tcpnet: a binary-framed TCP transport running actors
//     across real OS processes.
package runtime

// NodeID identifies one logical cluster node (scheduler, data source, or
// join node). IDs are assigned by the orchestration layer.
type NodeID int32

// NoNode is the sender of injected (orchestration) messages.
const NoNode NodeID = -1

// Message is anything actors exchange. WireSize reports the logical size in
// bytes used for network-transfer accounting; transports add their own
// per-message overhead on top.
type Message interface {
	WireSize() int
}

// Env is an actor's handle to its execution environment. All methods are
// meant to be called only from within Receive.
type Env interface {
	// Now returns the current time in nanoseconds: virtual time on the
	// simulator, wall-clock on live engines.
	Now() int64
	// Send dispatches a message from this actor to another actor.
	Send(to NodeID, m Message)
	// ChargeCPU accounts ns nanoseconds of local computation. On the
	// simulator this advances the node's clock and delays everything the
	// actor does afterwards; live engines ignore it (the real computation
	// already took real time).
	ChargeCPU(ns int64)
	// ChargeDisk accounts a blocking local-disk transfer of the given
	// logical size. Only the simulator models it.
	ChargeDisk(bytes int64, read bool)
}

// Actor is a protocol participant. Receive is invoked once per incoming
// message; engines guarantee an actor processes one message at a time.
type Actor interface {
	Receive(env Env, from NodeID, m Message)
}

// TransportStats reports session-layer transport activity. Engines that
// run over an unreliable byte transport (internal/tcpnet) expose a
// `TransportStats() TransportStats` method; the report layer picks it up
// by type assertion, the way it already does for simulator stats.
type TransportStats struct {
	// Resumes counts ack-based session resumes — recovery-ladder rung 1,
	// where a broken connection is re-established and only unacked
	// frames are retransmitted.
	Resumes int64
	// FullReassigns counts rung-2 recoveries: sessions torn down and
	// reassigned from scratch because resume was impossible.
	FullReassigns int64
	// RetransmittedFrames counts frames replayed on resume, both
	// directions summed.
	RetransmittedFrames int64
	// ChecksumFailures counts frames rejected by CRC verification.
	ChecksumFailures int64
	// DuplicateFrames counts frames dropped by sequence-number dedup.
	DuplicateFrames int64
	// DroppedMessages counts messages discarded because their worker was
	// dead or unrecoverable.
	DroppedMessages int64
	// FramesSent counts unique reliable frames sequenced, both
	// directions summed (retransmissions excluded).
	FramesSent int64
	// RelayedMessages counts worker→worker messages that relayed through
	// the coordinator hub (star topology); ~0 with the p2p data plane,
	// where chunk traffic travels over direct worker↔worker links.
	RelayedMessages int64
	// RelayedBytes is the payload volume of those relayed messages.
	RelayedBytes int64
	// CoordRestarts counts coordinator processes restored from a
	// write-ahead checkpoint (0 on a crash-free run).
	CoordRestarts int64
	// CheckpointReplays counts checkpoint records replayed across those
	// restores.
	CheckpointReplays int64
	// ReattachedWorkers counts workers that survived a coordinator crash
	// parked in their redial loop and re-attached to the restored
	// coordinator with their session intact (rung 1).
	ReattachedWorkers int64
}

// Engine runs a set of actors to quiescence.
type Engine interface {
	// Register adds an actor under the given id. Must be called before
	// Inject or Drain.
	Register(id NodeID, a Actor)
	// Inject delivers an orchestration message (from NoNode) without
	// charging the network.
	Inject(to NodeID, m Message)
	// Drain processes messages until no work remains, then returns. It is
	// the phase barrier used between the build, reshuffle, and probe
	// phases.
	Drain() error
	// NowSeconds reports the engine's current time in seconds since the
	// run started (virtual on the simulator, wall-clock otherwise).
	NowSeconds() float64
}
